#include "archsim/profiler.hpp"

#include <memory>

#include "samplers/dual_averaging.hpp"
#include "samplers/nuts.hpp"
#include "samplers/runner.hpp"

namespace bayes::archsim {

WorkloadProfile
profileWorkload(const ppl::Model& model, int chains, int warmupIters,
                std::uint64_t seed, bool scalarLikelihood)
{
    BAYES_CHECK(chains >= 1, "need at least one chain to profile");
    WorkloadProfile profile;

    // All evaluators must be alive simultaneously so their arenas and
    // data shadows occupy distinct address ranges, as real concurrent
    // chains would.
    std::vector<std::unique_ptr<ppl::Evaluator>> evals;
    evals.reserve(chains);
    for (int c = 0; c < chains; ++c) {
        evals.push_back(std::make_unique<ppl::Evaluator>(model));
        evals.back()->setScalarLikelihood(scalarLikelihood);
    }

    Rng master(seed);
    for (int c = 0; c < chains; ++c) {
        ppl::Evaluator& eval = *evals[c];
        Rng rng = master.fork();

        samplers::Hamiltonian ham(eval);
        samplers::NutsSampler nuts(ham, /*maxTreeDepth=*/8);
        samplers::PhasePoint z;
        z.q = samplers::findInitialPoint(eval, rng);
        ham.refresh(z);

        samplers::DualAveraging da(ham.findReasonableStepSize(z, rng), 0.8);
        nuts.setStepSize(da.stepSize());
        for (int t = 0; t < warmupIters; ++t) {
            const auto tr = nuts.transition(z, rng);
            da.update(tr.acceptStat);
            nuts.setStepSize(da.stepSize());
        }

        // Capture exactly one instrumented gradient evaluation.
        TraceCapture capture;
        eval.tape().setProbe(&capture);
        std::vector<double> grad;
        // bayes-lint: allow(R008): independent per-chain traces are the point here; profileBatchedEval is the batched twin
        eval.logProbGrad(z.q, grad);
        eval.tape().setProbe(nullptr);

        EvalProfile ep;
        ep.trace = capture.trace();
        ep.tapeNodes = eval.lastTapeNodes();
        ep.opCounts = eval.tape().opCounts();
        ep.dim = eval.dim();
        ep.dataBytes = model.modeledDataBytes();
        profile.chains.push_back(std::move(ep));
    }
    return profile;
}

EvalProfile
profileBatchedEval(const ppl::Model& model, int lanes, int warmupIters,
                   std::uint64_t seed, bool scalarLikelihood)
{
    BAYES_CHECK(lanes >= 1, "need at least one lane to profile");
    ppl::Evaluator eval(model);
    eval.setScalarLikelihood(scalarLikelihood);

    // Adapt every lane to its own representative position, as the
    // pooled chains it stands for would be after warmup.
    Rng master(seed);
    ppl::EvalBatch batch(eval.dim(), static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
        Rng rng = master.fork();
        samplers::Hamiltonian ham(eval);
        samplers::NutsSampler nuts(ham, /*maxTreeDepth=*/8);
        samplers::PhasePoint z;
        z.q = samplers::findInitialPoint(eval, rng);
        ham.refresh(z);
        samplers::DualAveraging da(ham.findReasonableStepSize(z, rng), 0.8);
        nuts.setStepSize(da.stepSize());
        for (int t = 0; t < warmupIters; ++t) {
            const auto tr = nuts.transition(z, rng);
            da.update(tr.acceptStat);
            nuts.setStepSize(da.stepSize());
        }
        batch.setPoint(static_cast<std::size_t>(l), z.q);
    }

    // Capture exactly one instrumented K-lane batched evaluation.
    TraceCapture capture;
    eval.tape().setProbe(&capture);
    std::vector<double> lp(static_cast<std::size_t>(lanes));
    ppl::EvalBatch grads;
    eval.logProbGradBatch(batch, lp, grads);
    eval.tape().setProbe(nullptr);

    EvalProfile ep;
    ep.trace = capture.trace();
    ep.tapeNodes = eval.lastTapeNodes();
    ep.opCounts = eval.tape().opCounts();
    ep.dim = eval.dim();
    ep.dataBytes = model.modeledDataBytes();
    return ep;
}

} // namespace bayes::archsim
