#!/usr/bin/env python3
"""bayes-lint entry point.

The linter lives in the tools/bayes_lint/ package (source model, rule
engine, one module per rule family); this shim keeps the historical
`tools/bayes_lint.py` invocation working for ctest, CI, and editors.
Run with --list-rules for the catalogue; docs/static-analysis.md has the
full contract.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bayes_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
