#include "archsim/core.hpp"

namespace bayes::archsim {

EvalCost
evalCost(const EvalProfile& profile, const EvalMemStats& mem,
         const Platform& platform, const CoreParams& params)
{
    EvalCost cost;
    const double nodes = static_cast<double>(profile.tapeNodes);
    const auto& ops = profile.opCounts;
    const double addOps =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::AddSub)]);
    const double mulOps =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::Mul)]);
    const double divOps =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::Div)]);
    const double specialOps =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::Special)]);

    cost.instructions = nodes
            * (params.instrPerNodeForward + params.instrPerNodeReverse)
        + static_cast<double>(profile.dataBytes) * params.instrPerDataByte;

    double cycles = cost.instructions * params.baseCpi
        + divOps * params.divExtraCycles
        + specialOps * params.specialExtraCycles
        // Dot-product/Cholesky style mul+add chains fuse into FMAs.
        - std::min(addOps, mulOps) * params.fmaFusionCycles;

    // Demand memory penalties plus the (small) cost of covered streams.
    cycles += mem.demandL2Hits * params.l2HitPenalty
        + mem.demandLlcHits * params.llcHitPenalty
        + mem.demandLlcMisses
            * (platform.memLatencyCycles() * params.memOverlap)
        + mem.streamAccesses * params.streamAccessCycles;

    // Branch behavior: the interpreter loop itself predicts nearly
    // perfectly; data-dependent transcendental range reduction and
    // divide special-casing contribute the mispredictions.
    const double nonLeaf = std::max(1.0, nodes);
    const double specialFrac = specialOps / nonLeaf;
    const double divFrac = divOps / nonLeaf;
    cost.branchMpki = 0.35 + 2.4 * specialFrac + 0.8 * divFrac;
    cycles += cost.branchMpki / 1000.0 * cost.instructions
        * params.mispredictPenalty;

    // i-cache: straight-line generated model code scales with the
    // likelihood loop body (Stan's generated C++ is the paper's stated
    // culprit for `tickets`).
    const double footprint =
        params.icacheFootprintBase + params.icacheBytesPerNode * nodes;
    const double icap = static_cast<double>(platform.l1i.sizeBytes);
    cost.icacheMpki = footprint <= icap
        ? 0.06
        : std::min(params.icacheMissCeiling,
                   20.0 * (1.0 - icap / footprint));
    cycles += cost.icacheMpki / 1000.0 * cost.instructions
        * params.icacheMissPenalty;

    cost.cycles = cycles;

    const double effectiveLlcMisses = mem.demandLlcMisses
        + params.prefetchLateFraction * mem.streamLlcMisses;
    cost.llcMpki = std::max(
        params.llcMpkiFloor,
        effectiveLlcMisses / cost.instructions * 1000.0);
    cost.llcTrafficBytes =
        (mem.demandLlcMisses + mem.streamLlcMisses + mem.writebacks
         + params.coldTrafficFraction * mem.accesses)
        * 64.0;
    return cost;
}

} // namespace bayes::archsim
