"""R013: Rng state copies are confined to the sanctioned fork points.

Speculative prefetching replays a chain's future random stream from a
replica of its generator, so the determinism story (byte-identical
draws at every speculation depth — tests/determinism_harness.hpp)
depends on every Rng duplication being one of the three documented
fork points in src/support/rng.hpp: `fork()` (jumped independent
stream), `replicaFork()` (exact replica, keeps the Box-Muller spare)
and `streamFork()` (counter-based keyed stream). An ad-hoc
copy-construction (`Rng clone = rng;`) silently duplicates generator
state *including or excluding* the spare depending on how it is
written, which is exactly the class of bug the fork points exist to
rule out. Call a fork-point method instead; genuinely intentional
snapshots (e.g. checkpoint/restore) carry a waiver.

The check is syntactic: a declaration `Rng name = expr;` whose
initializer contains no call (a call is how every fork point is
reached), or a direct copy-construction `Rng name(other)` /
`Rng name{other}` from something rng-named. Pass-by-value `Rng`
parameters are not flagged — their arguments are produced by fork
points at the call site.
"""

from __future__ import annotations

import re

from ..engine import rule
from ..source import grep_rule, in_dirs

# `Rng clone = rng;` — copy-init whose right-hand side has no
# parentheses (every sanctioned fork is a call, so a paren-free
# initializer can only be a raw state copy).
R013_COPY_INIT = re.compile(r"\bRng\s+\w+\s*=\s*[^;()=]*[A-Za-z_]\w*\s*;")

# `Rng clone(rng);` / `Rng clone{rng};` — direct copy-construction
# from an rng-named object.
R013_CTOR_COPY = re.compile(
    r"\bRng\s+\w+\s*[({]\s*\*?\s*[\w.>-]*[rR]ng_?\w*\s*[)}]")

R013_ALLOWED = {"src/support/rng.hpp", "src/support/rng.cpp"}


@rule("R013", "Rng state copies confined to the fork points in "
              "src/support/rng.hpp (fork/replicaFork/streamFork)")
def rule_r013(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src") or sf.relpath in R013_ALLOWED:
            continue
        for pat in (R013_COPY_INIT, R013_CTOR_COPY):
            grep_rule(sf, pat, "R013",
                      "raw Rng state copy; duplicate generator state "
                      "only through the src/support/rng.hpp fork "
                      "points (fork()/replicaFork()/streamFork()) so "
                      "speculative replay stays byte-deterministic",
                      findings)
