// Fixture: R010 cycle detection — a.hpp and b.hpp include each other.
#pragma once
#include "cycle/b.hpp"
