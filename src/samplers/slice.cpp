#include "samplers/slice.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

SliceSampler::SliceSampler(ppl::Evaluator& eval, double initialWidth,
                           int maxStepOut)
    : eval_(&eval), widths_(eval.dim(), initialWidth),
      maxStepOut_(maxStepOut)
{
    BAYES_CHECK(initialWidth > 0, "slice width must be positive");
    BAYES_CHECK(maxStepOut >= 1, "need at least one step-out");
}

SliceTransition
SliceSampler::sweep(std::vector<double>& q, double& logProb, Rng& rng)
{
    SliceTransition result;
    const std::size_t n = q.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Slice level: log y = log p(x) + log(uniform).
        const double logY =
            logProb + std::log(std::max(rng.uniform(), 1e-300));
        const double x0 = q[i];
        const double w = widths_[i];

        // Stepping out (Neal 2003, Fig. 3) with a doubling cap.
        double lo = x0 - w * rng.uniform();
        double hi = lo + w;
        auto logProbAt = [&](double x) {
            q[i] = x;
            ++result.evals;
            return eval_->logProb(q);
        };
        int stepsLeft = maxStepOut_;
        while (stepsLeft-- > 0 && logProbAt(lo) > logY)
            lo -= w;
        stepsLeft = maxStepOut_;
        while (stepsLeft-- > 0 && logProbAt(hi) > logY)
            hi += w;

        // Shrinkage until an in-slice point is found.
        double x1 = x0;
        double newLogProb = logProb;
        for (int attempt = 0; attempt < 200; ++attempt) {
            x1 = rng.uniform(lo, hi);
            const double lp = logProbAt(x1);
            if (lp > logY) {
                newLogProb = lp;
                break;
            }
            if (x1 < x0)
                lo = x1;
            else
                hi = x1;
            if (hi - lo < 1e-14) {
                x1 = x0; // degenerate slice: stay put
                break;
            }
        }
        q[i] = x1;
        logProb = x1 == x0 ? logProb : newLogProb;
    }
    return result;
}

void
SliceSampler::tuneWidths(double factor)
{
    BAYES_CHECK(factor > 0, "width factor must be positive");
    for (double& w : widths_)
        w = std::clamp(w * factor, 1e-6, 1e6);
}

} // namespace bayes::samplers
