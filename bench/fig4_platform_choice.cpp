/**
 * @file
 * Figure 4 — platform comparison at 4 cores: per-workload speedup of
 * Skylake over the Broadwell baseline, IPC and LLC MPKI on both
 * machines, plus the scheduled mix (LLC-bound workloads on Broadwell,
 * the rest on Skylake) and its aggregate speedup over all-Broadwell —
 * the paper reports 1.16x.
 */
#include "common.hpp"
#include "sched/scheduler.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    // Threshold from the Fig. 3 analysis: between the largest
    // compute-bound modeled dataset (~13 KB) and the smallest LLC-bound
    // one (~19 KB).
    const sched::PlatformScheduler scheduler(sky, bdw, 16.0 * 1024.0);

    Table table({"workload", "spd(Sky/Bdw)", "IPC Sky", "IPC Bdw",
                 "MPKI Sky", "MPKI Bdw", "scheduled", "spd(sched/Bdw)"});
    std::vector<double> schedSpeedups;
    double bdwTotal = 0.0, schedTotal = 0.0;
    for (const auto& entry :
         bench::prepareSuite(1.0, bench::kShortIterations)) {
        const auto onSky =
            archsim::simulateSystem(entry.profile, entry.work, sky, 4);
        const auto onBdw =
            archsim::simulateSystem(entry.profile, entry.work, bdw, 4);
        const auto placement = scheduler.place(*entry.workload);
        const auto& chosen =
            placement.platform->name == "Skylake" ? onSky : onBdw;
        const double schedSpeedup = onBdw.seconds / chosen.seconds;
        schedSpeedups.push_back(schedSpeedup);
        bdwTotal += onBdw.seconds;
        schedTotal += chosen.seconds;
        table.row()
            .cell(entry.workload->name())
            .cell(onBdw.seconds / onSky.seconds, 2)
            .cell(onSky.ipc, 2)
            .cell(onBdw.ipc, 2)
            .cell(onSky.llcMpki, 2)
            .cell(onBdw.llcMpki, 2)
            .cell(placement.platform->name)
            .cell(schedSpeedup, 2);
    }
    printSection("Figure 4 — Skylake vs Broadwell at 4 cores + "
                 "scheduled placement",
                 table);

    Table agg({"aggregate", "value"});
    agg.row().cell("geomean speedup (scheduled / all-Broadwell)").cell(
        geometricMean(schedSpeedups), 3);
    agg.row().cell("total-time speedup (scheduled / all-Broadwell)").cell(
        bdwTotal / schedTotal, 3);
    printSection("Figure 4 — aggregate (paper: 1.16x)", agg);
    return 0;
}
