#include "common.hpp"

#include <cstdio>

#include "support/timer.hpp"

namespace bayes::bench {

samplers::Config
userConfig(const workloads::Workload& workload,
           samplers::ExecutionPolicy execution)
{
    samplers::Config cfg;
    cfg.chains = workload.info().defaultChains;
    cfg.iterations = workload.info().defaultIterations;
    cfg.execution = execution;
    return cfg;
}

SuiteEntry
prepareWorkload(const std::string& name, double dataScale, int iterations,
                samplers::ExecutionPolicy execution)
{
    SuiteEntry entry;
    entry.workload = workloads::makeWorkload(name, dataScale);
    samplers::Config cfg = userConfig(*entry.workload, execution);
    if (iterations > 0)
        cfg.iterations = iterations;

    Timer timer;
    entry.run = samplers::run(*entry.workload, cfg);
    entry.profile = archsim::profileWorkload(*entry.workload, cfg.chains);
    entry.work = archsim::extractRunWork(entry.run);
    std::fprintf(stderr, "[bench] %-10s scale=%.2f iters=%d sampled in %.1fs\n",
                 name.c_str(), dataScale, cfg.iterations, timer.seconds());
    return entry;
}

std::vector<SuiteEntry>
prepareSuite(double dataScale, int iterations,
             samplers::ExecutionPolicy execution)
{
    std::vector<SuiteEntry> suite;
    for (const auto& name : workloads::suiteNames())
        suite.push_back(
            prepareWorkload(name, dataScale, iterations, execution));
    return suite;
}

} // namespace bayes::bench
