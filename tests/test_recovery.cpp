/**
 * @file
 * Parameter-recovery tests: the synthetic data generators embed known
 * ground-truth effects; sampling the posterior must recover them. These
 * are the strongest end-to-end checks of model + transform + sampler.
 */
#include <gtest/gtest.h>

#include "diagnostics/summary.hpp"
#include "samplers/runner.hpp"
#include "workloads/suite.hpp"

namespace bayes::workloads {
namespace {

samplers::RunResult
sample(const Workload& wl, int iterations, std::uint64_t seed = 4242)
{
    samplers::Config cfg;
    cfg.chains = 2;
    cfg.iterations = iterations;
    cfg.seed = seed;
    return samplers::run(wl, cfg);
}

diagnostics::CoordinateSummary
coordByName(const diagnostics::PosteriorSummary& summary,
            const std::string& name)
{
    for (const auto& c : summary.coords)
        if (c.name == name)
            return c;
    throw Error("no coordinate " + name);
}

TEST(Recovery, TwelveCitiesFindsNegativeLimitEffect)
{
    TwelveCities wl;
    const auto run = sample(wl, 800);
    const auto summary = diagnostics::summarize(run, wl.layout());
    const auto beta = coordByName(summary, "beta_limit");
    // The generator used -0.18; the 90% interval must be negative.
    EXPECT_LT(beta.q95, 0.0);
    EXPECT_NEAR(beta.mean, TwelveCities::kTrueLimitEffect, 0.1);
}

TEST(Recovery, TicketsFindsQuotaEffect)
{
    TicketsQuota wl(0.5);
    const auto run = sample(wl, 400);
    const auto summary = diagnostics::summarize(run, wl.layout());
    const auto delta = coordByName(summary, "delta");
    EXPECT_GT(delta.q05, 0.0); // officers do respond to the quota
    EXPECT_NEAR(delta.mean, TicketsQuota::kTrueQuotaEffect, 0.1);
}

TEST(Recovery, OdeRecoversPharmacokineticParameters)
{
    PkpdOde wl;
    const auto run = sample(wl, 800);
    const auto summary = diagnostics::summarize(run, wl.layout());
    EXPECT_NEAR(coordByName(summary, "mtt").mean, 5.0, 1.5);
    EXPECT_NEAR(coordByName(summary, "circ0").mean, 5.0, 1.0);
}

TEST(Recovery, AdRecoversInterceptSign)
{
    AdAttribution wl;
    const auto run = sample(wl, 600);
    const auto summary = diagnostics::summarize(run, wl.layout());
    const auto intercept = coordByName(summary, "intercept");
    EXPECT_NEAR(intercept.mean, -0.8, 0.45);
}

TEST(Recovery, SurvivalRecoversSurvivalRate)
{
    AnimalSurvival wl(0.5);
    const auto run = sample(wl, 500);
    const auto summary = diagnostics::summarize(run, wl.layout());
    // mu_phi generated at 1.1 (survival ~0.75 on the logit scale).
    EXPECT_NEAR(coordByName(summary, "mu_phi").mean, 1.1, 0.5);
}

TEST(Recovery, ButterflyRecoversCommunityMeans)
{
    ButterflyRichness wl;
    const auto run = sample(wl, 800);
    const auto summary = diagnostics::summarize(run, wl.layout());
    EXPECT_NEAR(coordByName(summary, "mu_det").mean, -0.6, 0.6);
}

TEST(Recovery, RacialFindsLowerSearchThresholdForMinorities)
{
    RacialThreshold wl;
    const auto run = sample(wl, 600);
    const auto summary = diagnostics::summarize(run, wl.layout());
    // Generated: minority groups 1 and 2 are searched more (mu_search
    // higher) but hit less (mu_hit lower) than group 0 — the paper's
    // threshold-test signature.
    const double s0 = coordByName(summary, "mu_search[0]").mean;
    const double s1 = coordByName(summary, "mu_search[1]").mean;
    const double h0 = coordByName(summary, "mu_hit[0]").mean;
    const double h1 = coordByName(summary, "mu_hit[1]").mean;
    EXPECT_GT(s1, s0);
    EXPECT_LT(h1, h0);
}

} // namespace
} // namespace bayes::workloads
