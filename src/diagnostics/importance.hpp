/**
 * @file
 * Importance-sampling reliability diagnostics: the Pareto-k̂ tail-shape
 * estimate (Vehtari, Simpson, Gelman, Yao & Gabry 2024, PSIS) over log
 * importance ratios, plus summary statistics of the normalized weights.
 *
 * These are the cheap-tier acceptance signals for the amortized serving
 * path: when an ADVI approximation q is used in place of the true
 * posterior p, the importance ratios r_i = p(θ_i)/q(θ_i) over draws
 * θ_i ~ q reveal how badly q underestimates the tails of p. A finite
 * variance (servable) ratio distribution has k̂ < 0.5; k̂ in [0.5, 0.7]
 * is usable with inflated error; k̂ > 0.7 means the cheap tier cannot
 * be trusted and the request must escalate to full MCMC.
 *
 * This header is samplers-free: it sees only raw log-ratio vectors.
 */
#pragma once

#include <vector>

namespace bayes::diagnostics {

/**
 * Pareto-k̂ tail-shape estimate of a set of log importance ratios.
 *
 * Fits a generalized Pareto distribution to the largest
 * M = min(0.2n, 3√n) importance weights (exceedances over the (n−M)th
 * order statistic) with the Zhang & Stephens (2009) profile-likelihood
 * estimator and loo's weakly informative prior on the shape. The
 * returned k̂ estimates the tail index of the weight distribution:
 *
 *   k̂ <  0    weights are bounded (lighter than any power law)
 *   k̂ <  0.5  finite variance — plain importance sampling works
 *   k̂ >= 0.7  conventional reliability cutoff — escalate
 *
 * Infinite/NaN log ratios: +inf or NaN entries make the estimate
 * meaningless and return +inf (maximally unreliable); -inf entries are
 * zero weights and are dropped before fitting.
 *
 * @param logRatios  log(p/q) per draw; need not be normalized. Must be
 *                   non-empty.
 * @return k̂, or NaN when fewer than 5 finite ratios remain (too few to
 *         fit a tail), or -inf when the retained tail is degenerate
 *         (all tail weights identical).
 */
double paretoKhat(const std::vector<double>& logRatios);

/** Weight-distribution summary alongside the tail-shape estimate. */
struct ImportanceDiagnostics {
    /** Pareto tail-shape estimate; see paretoKhat. */
    double khat = 0.0;
    /** Effective-sample-size fraction 1 / (n·Σ w̄_i²) of the
     * self-normalized weights, in (0, 1]; 1 means uniform weights. */
    double essRatio = 0.0;
    /** Largest single normalized weight, in [1/n, 1]; values near 1
     * mean one draw dominates the estimate. */
    double maxWeightFraction = 0.0;
};

/**
 * Full importance-weight diagnostics over a set of log ratios.
 * Normalizes the weights with the stabilized exp(l − max l) transform,
 * so unnormalized log densities are fine.
 */
ImportanceDiagnostics
importanceDiagnostics(const std::vector<double>& logRatios);

} // namespace bayes::diagnostics
