/**
 * @file
 * Posterior summaries over multi-chain runs: per-coordinate moments,
 * quantiles, R-hat and ESS, plus helpers for pooling draws and for the
 * "second half of samples" windows the convergence study uses.
 */
#pragma once

#include <string>
#include <vector>

#include "ppl/model.hpp"
#include "samplers/types.hpp"
#include "support/table.hpp"

namespace bayes::diagnostics {

/** Summary of one posterior coordinate. */
struct CoordinateSummary
{
    std::string name;
    double mean;
    double sd;
    double q05;
    double median;
    double q95;
    double rhat;
    double ess;
};

/** Full posterior summary of a run. */
struct PosteriorSummary
{
    std::vector<CoordinateSummary> coords;

    /** Largest R-hat across coordinates. */
    double maxRhat() const;

    /** Smallest ESS across coordinates. */
    double minEss() const;

    /** Render as an aligned table. */
    Table table() const;
};

/** Summarize every coordinate of a run against the model's layout. */
PosteriorSummary summarize(const samplers::RunResult& run,
                           const ppl::ParamLayout& layout);

/** All post-warmup draws of coordinate @p i pooled across chains. */
std::vector<double> pooledCoordinate(const samplers::RunResult& run,
                                     std::size_t i);

/**
 * Per-chain draws of coordinate @p i restricted to the last
 * @p keepFraction of each chain (the paper infers from the second half
 * of samples, keepFraction = 0.5).
 */
std::vector<std::vector<double>>
recentWindow(const samplers::RunResult& run, std::size_t i,
             double keepFraction);

/** Max split R-hat over all coordinates of a run (whole chains). */
double runMaxRhat(const samplers::RunResult& run);

} // namespace bayes::diagnostics
