#include "ppl/evaluator.hpp"

#include <cmath>

#include "obs/registry.hpp"

namespace bayes::ppl {
namespace {

/** Per-eval tape footprint gauges (see docs/observability.md). */
struct TapeMetrics
{
    obs::Gauge& nodesPerEval =
        obs::Registry::global().gauge("tape.nodes_per_eval");
    obs::Gauge& bytesPerEval =
        obs::Registry::global().gauge("tape.bytes_per_eval");

    static TapeMetrics&
    get()
    {
        static TapeMetrics* m = new TapeMetrics; // leaked, like Registry
        return *m;
    }
};

/**
 * Constrain a flat unconstrained vector, returning the constrained
 * values and adding the log-Jacobian into @p logJ. Shared by the
 * double and Var paths.
 */
template <typename T>
std::vector<T>
constrainAll(const ParamLayout& layout, const std::vector<T>& u, T& logJ)
{
    std::vector<T> x(layout.dim());
    for (std::size_t b = 0; b < layout.blockCount(); ++b) {
        const ParamBlock& blk = layout.block(b);
        const std::size_t off = layout.offset(b);
        if (blk.transform == TransformKind::Ordered) {
            logJ += constrainOrdered(u.data() + off, x.data() + off,
                                     blk.size);
            continue;
        }
        for (std::size_t i = 0; i < blk.size; ++i) {
            x[off + i] = constrainScalar(blk.transform, u[off + i],
                                         blk.lowerBound, blk.upperBound);
            logJ += logJacobianScalar(blk.transform, u[off + i],
                                      blk.lowerBound, blk.upperBound);
        }
    }
    return x;
}

} // namespace

Evaluator::Evaluator(const Model& model)
    : model_(&model), layout_(&model.layout()),
      dataShadow_(model.modeledDataBytes(), 0)
{
}

double
Evaluator::logProb(const std::vector<double>& q)
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    ++numEvals_;
    double logJ = 0.0;
    const std::vector<double> x = constrainAll(*layout_, q, logJ);
    const ParamView<double> view(*layout_, x);
    try {
        return (scalarLikelihood_ ? model_->logProbScalar(view)
                                  : model_->logProb(view))
            + logJ;
    } catch (const Error&) {
        // Numerically infeasible point (e.g. a covariance that lost
        // positive definiteness): treat as zero density.
        return -INFINITY;
    }
}

double
Evaluator::logProbGrad(const std::vector<double>& q,
                       std::vector<double>& grad)
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    ++numGradEvals_;
    tape_.clear();
    // Pre-size to the previous eval's footprint so the arenas do not
    // re-grow (and memcpy) during the first iterations after a clear.
    tape_.reserve(lastTapeNodes_, lastTapeEdges_);

    std::vector<ad::Var> u(dim());
    for (std::size_t i = 0; i < dim(); ++i)
        u[i] = ad::leaf(tape_, q[i]);

    ad::Var logJ = 0.0;
    const std::vector<ad::Var> x = constrainAll(*layout_, u, logJ);
    const ParamView<ad::Var> view(*layout_, x);
    streamDataShadow();
    ad::Var lp;
    try {
        lp = (scalarLikelihood_ ? model_->logProbScalar(view)
                                : model_->logProb(view))
            + logJ;
    } catch (const Error&) {
        lp = ad::Var(-INFINITY); // infeasible point: reject
    }
    lastTapeNodes_ = tape_.size();
    lastTapeEdges_ = tape_.edgeCount();

    if (!std::isfinite(lp.value())) {
        // Divergent/out-of-support point: gradient is meaningless but
        // must be well-formed for the sampler's rejection logic.
        lastTapeBytes_ = tape_.bytes();
        grad.assign(dim(), 0.0);
        return lp.value();
    }

    tape_.gradient(lp.id(), adjoints_);
    lastTapeBytes_ = tape_.bytes();
    TapeMetrics& metrics = TapeMetrics::get();
    metrics.nodesPerEval.set(static_cast<double>(lastTapeNodes_));
    metrics.bytesPerEval.set(static_cast<double>(lastTapeBytes_));
    grad.resize(dim());
    // Leaves were pushed first, so their ids are 0..dim-1.
    for (std::size_t i = 0; i < dim(); ++i)
        grad[i] = adjoints_[u[i].id()];
    return lp.value();
}

std::vector<double>
Evaluator::constrain(const std::vector<double>& q) const
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    double logJ = 0.0;
    return constrainAll(*layout_, q, logJ);
}

void
Evaluator::streamDataShadow()
{
    ad::MemProbe* probe = tape_.probe();
    if (!probe || dataShadow_.empty())
        return;
    // One sequential pass over the observed data per evaluation,
    // touched at cache-line granularity.
    constexpr std::size_t kLine = 64;
    for (std::size_t off = 0; off < dataShadow_.size(); off += kLine)
        probe->access(dataShadow_.data() + off, kLine, false);
}

} // namespace bayes::ppl
