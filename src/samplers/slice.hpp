/**
 * @file
 * Coordinate-wise slice sampler (Neal 2003) — another member of the
 * sampling-algorithm family the paper lists alongside NUTS (§II-B:
 * "Gibbs sampler, Hamiltonian Monte Carlo, slice sampling, ...").
 * Gradient-free like Metropolis-Hastings but with self-tuning move
 * sizes: each coordinate update samples uniformly from the slice
 * {x : p(x) > y} using the stepping-out and shrinkage procedures.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ppl/evaluator.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/** Outcome of one full coordinate sweep. */
struct SliceTransition
{
    /** Density evaluations consumed by the sweep. */
    std::uint32_t evals = 0;
};

/** One-chain coordinate slice sampler. */
class SliceSampler
{
  public:
    /**
     * @param eval           model evaluator (value path only)
     * @param initialWidth   stepping-out interval width per coordinate
     * @param maxStepOut     stepping-out doublings cap
     */
    explicit SliceSampler(ppl::Evaluator& eval, double initialWidth = 1.0,
                          int maxStepOut = 16);

    /**
     * Sweep all coordinates once, updating @p q and its cached density
     * @p logProb in place.
     */
    SliceTransition sweep(std::vector<double>& q, double& logProb,
                          Rng& rng);

    /** Per-coordinate interval widths (adapted by tuneWidth). */
    const std::vector<double>& widths() const { return widths_; }

    /**
     * Robbins-Monro width adaptation toward a target number of
     * shrinkage steps; call during warmup only.
     */
    void tuneWidths(double factor);

  private:
    ppl::Evaluator* eval_;
    std::vector<double> widths_;
    int maxStepOut_;
};

} // namespace bayes::samplers
