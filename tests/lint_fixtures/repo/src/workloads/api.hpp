// Fixture: exercises the allowed manifest edge workloads -> math.
#pragma once
#include "math/special.hpp"

namespace fixture {
inline double workloadDensity(double x) { return x; }
}  // namespace fixture
