/**
 * @file
 * Tests for the extension features: rank-normalized R-hat and the
 * likelihood-subsampling mitigation on `tickets` (paper §VII-B).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "diagnostics/convergence.hpp"
#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "support/rng.hpp"
#include "workloads/tickets_quota.hpp"

namespace bayes {
namespace {

using diagnostics::rankNormalizedRhat;
using diagnostics::splitRhat;

std::vector<std::vector<double>>
iidChains(int m, int n, double mean, Rng& rng, double heavyTailDof = 0.0)
{
    std::vector<std::vector<double>> chains(m);
    for (auto& chain : chains) {
        chain.resize(n);
        for (auto& x : chain) {
            x = heavyTailDof > 0 ? mean + rng.studentT(heavyTailDof)
                                 : rng.normal(mean, 1.0);
        }
    }
    return chains;
}

TEST(RankRhat, AgreesWithClassicOnGaussians)
{
    Rng rng(1);
    const auto chains = iidChains(4, 500, 0.0, rng);
    EXPECT_NEAR(rankNormalizedRhat(chains), splitRhat(chains), 0.02);
    EXPECT_LT(rankNormalizedRhat(chains), 1.03);
}

TEST(RankRhat, FlagsShiftedChains)
{
    Rng rng(2);
    auto chains = iidChains(2, 400, 0.0, rng);
    auto far = iidChains(2, 400, 6.0, rng);
    chains.insert(chains.end(), far.begin(), far.end());
    EXPECT_GT(rankNormalizedRhat(chains), 1.5);
}

TEST(RankRhat, StableUnderHeavyTails)
{
    // Cauchy-ish chains break the classic moment-based R-hat's
    // stability (a single huge draw inflates within-variance); the
    // rank-normalized version must stay near 1 for well-mixed chains.
    Rng rng(3);
    const auto chains = iidChains(4, 800, 0.0, rng, /*dof=*/1.0);
    EXPECT_LT(rankNormalizedRhat(chains), 1.05);
}

TEST(RankRhat, InvariantToMonotoneTransforms)
{
    Rng rng(4);
    auto chains = iidChains(4, 400, 1.0, rng);
    const double base = rankNormalizedRhat(chains);
    for (auto& chain : chains)
        for (auto& x : chain)
            x = std::exp(x); // strictly increasing transform
    EXPECT_NEAR(rankNormalizedRhat(chains), base, 1e-9);
}

TEST(RankRhat, ValidatesInput)
{
    EXPECT_THROW(rankNormalizedRhat({}), Error);
    EXPECT_THROW(rankNormalizedRhat({{1.0, 2.0}}), Error);
}

TEST(Subsampling, ShrinksWorkingSetAndModeledData)
{
    workloads::TicketsQuota full(1.0, 1.0);
    workloads::TicketsQuota half(1.0, 0.5);
    workloads::TicketsQuota quarter(1.0, 0.25);
    EXPECT_EQ(half.activeRows(), full.activeRows() / 2);
    EXPECT_GT(full.modeledDataBytes(), half.modeledDataBytes());
    EXPECT_GT(half.modeledDataBytes(), quarter.modeledDataBytes());

    // The scalar-path tape shrinks proportionally with the subsample.
    ppl::Evaluator evalFull(full), evalHalf(half);
    evalFull.setScalarLikelihood(true);
    evalHalf.setScalarLikelihood(true);
    Rng rng(5);
    const auto qf = samplers::findInitialPoint(evalFull, rng);
    std::vector<double> grad;
    evalFull.logProbGrad(qf, grad);
    Rng rng2(5);
    const auto qh = samplers::findInitialPoint(evalHalf, rng2);
    evalHalf.logProbGrad(qh, grad);
    EXPECT_LT(static_cast<double>(evalHalf.lastTapeNodes()),
              0.7 * static_cast<double>(evalFull.lastTapeNodes()));

    // On the fused path the node count no longer scales with rows at
    // all — subsampling and fusion attack the same working set from
    // different ends.
    ppl::Evaluator fusedFull(full), fusedHalf(half);
    fusedFull.logProbGrad(qf, grad);
    fusedHalf.logProbGrad(qh, grad);
    EXPECT_EQ(fusedFull.lastTapeNodes(), fusedHalf.lastTapeNodes());
}

TEST(Subsampling, ReweightingKeepsLikelihoodMagnitude)
{
    // At the same parameter point, the reweighted subsample must sit
    // close to the full likelihood (it is an unbiased estimator whose
    // error shrinks with the subsample size).
    workloads::TicketsQuota full(1.0, 1.0);
    workloads::TicketsQuota half(1.0, 0.5);
    ppl::Evaluator evalFull(full), evalHalf(half);
    const std::vector<double> q(evalFull.dim(), 0.1);
    const double lpFull = evalFull.logProb(q);
    const double lpHalf = evalHalf.logProb(q);
    // Unbiased estimator: same order of magnitude, modest sample error
    // (priors are not reweighted, and the subsample is a fixed half).
    EXPECT_NEAR(lpHalf / lpFull, 1.0, 0.25);
}

TEST(Subsampling, PosteriorStillFindsTheQuotaEffect)
{
    workloads::TicketsQuota wl(0.5, 0.5);
    samplers::Config cfg;
    cfg.chains = 2;
    cfg.iterations = 300;
    const auto run = samplers::run(wl, cfg);
    const std::size_t idx =
        wl.layout().offset(wl.layout().blockIndex("delta"));
    double m = 0;
    std::size_t count = 0;
    for (const auto& chain : run.chains)
        for (const auto& d : chain.draws) {
            m += d[idx];
            ++count;
        }
    m /= static_cast<double>(count);
    EXPECT_NEAR(m, workloads::TicketsQuota::kTrueQuotaEffect, 0.15);
}

TEST(Subsampling, RejectsBadFraction)
{
    EXPECT_THROW(workloads::TicketsQuota(1.0, 0.0), Error);
    EXPECT_THROW(workloads::TicketsQuota(1.0, 1.5), Error);
}

} // namespace
} // namespace bayes
