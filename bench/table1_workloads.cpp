/**
 * @file
 * Table I — a summary of BayesSuite workloads: model family,
 * application, source, data, plus this implementation's dimensions and
 * default run configuration.
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    std::printf("Table I: A summary of BayesSuite workloads\n");
    Table table({"Name", "Model", "Application", "Reference", "Data",
                 "dim", "data KB", "iters"});
    for (const auto& wl : workloads::makeSuite()) {
        const auto& info = wl->info();
        table.row()
            .cell(info.name)
            .cell(info.modelFamily)
            .cell(info.application)
            .cell(info.source)
            .cell(info.dataDescription)
            .cell(static_cast<long>(wl->layout().dim()))
            .cell(static_cast<double>(wl->modeledDataBytes()) / 1024.0, 1)
            .cell(static_cast<long>(info.defaultIterations));
    }
    printSection("Table I — BayesSuite workloads", table);
    return 0;
}
