/**
 * @file
 * Figure 8 — the overall speedup of the paper's combined techniques
 * (platform scheduling from §V + computation elision from §VI) over the
 * baseline: no convergence detection, running on the Broadwell server.
 * The paper reports 5.8x average, with the energy-oracle points at
 * 6.2x.
 *
 * The oracle here is the lowest-energy quality-passing point among
 * {1,2,4}-core placements of the 4-chain and 2-chain elided runs on the
 * scheduled platform (the paper's oracle also uses fewer chains).
 */
#include "common.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "sched/scheduler.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

namespace {

std::vector<std::vector<double>>
pooledAll(const samplers::RunResult& run, std::size_t dim)
{
    std::vector<std::vector<double>> out;
    for (std::size_t i = 0; i < dim; ++i)
        out.push_back(diagnostics::pooledCoordinate(run, i));
    return out;
}

} // namespace

int
main()
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    const sched::PlatformScheduler scheduler(sky, bdw, 16.0 * 1024.0);

    Table table({"workload", "platform", "baseline(s)", "proposed(s)",
                 "speedup", "oracle spd"});
    std::vector<double> speedups, oracleSpeedups;

    for (const auto& name : workloads::suiteNames()) {
        const auto wl = workloads::makeWorkload(name);
        // Pooled execution (the userConfig default): the baseline and
        // the elided runs use all cores, and the phased monitor keeps
        // the elided stop draw identical to the sequential schedule.
        const auto cfg = bench::userConfig(*wl);
        std::fprintf(stderr, "[bench] %s: baseline + elided runs...\n",
                     name.c_str());

        const auto userRun = samplers::run(*wl, cfg);
        const auto elided = elide::runWithElision(*wl, cfg);
        auto cfg2 = cfg;
        cfg2.chains = 2;
        const auto elided2 = elide::runWithElision(*wl, cfg2);

        const auto profile4 = archsim::profileWorkload(*wl, 4);
        const auto profile2 = archsim::profileWorkload(*wl, 2);
        const auto placement = scheduler.place(*wl);
        const auto& target = *placement.platform;

        // Baseline: user setting, no elision, all-Broadwell, 4 cores.
        const auto baseline = archsim::simulateSystem(
            profile4, archsim::extractRunWork(userRun), bdw, 4);
        // Proposed: scheduled platform + 4-chain elision, 4 cores.
        const auto proposed = archsim::simulateSystem(
            profile4, archsim::extractRunWork(elided.run), target, 4);

        // Oracle: cheapest quality-passing elided placement.
        const auto userPooled = pooledAll(userRun, wl->layout().dim());
        auto quality = [&](const samplers::RunResult& run) {
            return diagnostics::gaussianKl(
                pooledAll(run, wl->layout().dim()), userPooled);
        };
        const double klGate = 0.15;
        double oracleSeconds = proposed.seconds;
        double oracleEnergy = proposed.energyJ;
        auto consider = [&](const archsim::WorkloadProfile& profile,
                            const samplers::RunResult& run, double kl) {
            if (kl > klGate)
                return;
            const auto work = archsim::extractRunWork(run);
            for (int cores : {1, 2, 4}) {
                const auto sim =
                    archsim::simulateSystem(profile, work, target, cores);
                if (sim.energyJ < oracleEnergy) {
                    oracleEnergy = sim.energyJ;
                    oracleSeconds = sim.seconds;
                }
            }
        };
        consider(profile4, elided.run, quality(elided.run));
        consider(profile2, elided2.run, quality(elided2.run));

        const double speedup = baseline.seconds / proposed.seconds;
        const double oracleSpeedup = baseline.seconds / oracleSeconds;
        speedups.push_back(speedup);
        oracleSpeedups.push_back(oracleSpeedup);
        table.row()
            .cell(name)
            .cell(target.name)
            .cell(baseline.seconds, 2)
            .cell(proposed.seconds, 2)
            .cell(speedup, 2)
            .cell(oracleSpeedup, 2);
    }
    printSection("Figure 8 — overall speedup of scheduling + elision "
                 "over the no-elision Broadwell baseline",
                 table);

    Table agg({"aggregate", "value"});
    agg.row().cell("mean speedup [paper: 5.8x]").cell(mean(speedups), 2);
    agg.row().cell("geomean speedup").cell(geometricMean(speedups), 2);
    agg.row().cell("mean oracle speedup [paper: 6.2x]").cell(
        mean(oracleSpeedups), 2);
    printSection("Figure 8 — aggregate", agg);
    return 0;
}
