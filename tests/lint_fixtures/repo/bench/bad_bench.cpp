// Fixture: outside src/math/ even unqualified gamma calls are raw (they
// bind to the libc global-namespace symbols), and bench code must use
// the shared pool like everyone else.
#include <cmath>
#include <thread>

namespace fixture {
double unqualified(double x) { return lgamma(x); }  // EXPECT: R002
void bench()
{
    std::thread t([] {});  // EXPECT: R001
    t.join();
}
}  // namespace fixture
