// Fixture twin of src/samplers/amortize_gate.hpp: the one file where
// R014 permits acceptance-gate threshold literals. Nothing here may
// fire.
#pragma once

namespace fixture {

struct GateThresholds
{
    double khatMax = 0.70;
    double klMax = 1.0;
    double refRhatMax = 1.10;
};

} // namespace fixture
