"""Shared source model: discovery, comment stripping, waivers, EXPECTs.

Every rule sees the tree through this module, so the waiver contract and
the comment/string-stripping semantics are defined exactly once.
"""

from __future__ import annotations

import os
import re

CXX_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx")
SCAN_DIRS = ("src", "bench", "examples", "tools", "tests")
SKIP_DIR_PARTS = {"lint_fixtures", "__pycache__"}

WAIVER_RE = re.compile(
    r"(?://|<!--)\s*bayes-lint:\s*allow\(\s*([A-Z0-9, ]+?)\s*\)\s*:?\s*(.*)")
EXPECT_RE = re.compile(r"(?://|<!--)\s*EXPECT:\s*([A-Z0-9 ]+?)\s*(?:-->)?\s*$")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path          # repo-root-relative, forward slashes
        self.line = line          # 1-based
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines
    and column positions, so rule regexes never match inside either."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == 'R' and nxt == '"' and (i == 0 or not (
                    text[i - 1].isalnum() or text[i - 1] == "_")):
                m = re.match(r'R"([^()\\ \n]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def parse_waiver_line(raw):
    """(rules set, justification) for a waiver on @p raw, else None.

    The justification stops at a trailing comment opener (a fixture
    EXPECT marker is not a justification) and sheds any trailing `-->`
    from HTML-comment waivers in Markdown.
    """
    m = WAIVER_RE.search(raw)
    if not m:
        return None
    rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
    just = re.split(r"//|<!--", m.group(2))[0]
    just = just.replace("-->", "").strip()
    return rules, just


class SourceFile:
    """One scanned file: raw lines, stripped lines, waivers, EXPECTs."""

    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        self.raw_lines = text.splitlines()
        self.lines = strip_comments_and_strings(text).splitlines()
        # waivers[line] = (set of rule ids, justification)
        self.waivers = {}
        self.expects = {}  # line -> set of rule ids
        for lineno, raw in enumerate(self.raw_lines, 1):
            w = parse_waiver_line(raw)
            if w:
                self.waivers[lineno] = w
            m = EXPECT_RE.search(raw)
            if m:
                self.expects[lineno] = set(m.group(1).split())

    def waived(self, lineno, rule):
        """A waiver covers its own line, and the following line when the
        waiver stands alone on a comment line."""
        for wline in (lineno, lineno - 1):
            w = self.waivers.get(wline)
            if w and rule in w[0] and w[1]:
                return True
        return False


def discover(root):
    files = []
    for top in SCAN_DIRS:
        topdir = os.path.join(root, top)
        if not os.path.isdir(topdir):
            continue
        for dirpath, dirnames, filenames in os.walk(topdir):
            dirnames[:] = [d for d in sorted(dirnames)
                           if d not in SKIP_DIR_PARTS]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(SourceFile(root, rel))
    return files


def in_dirs(path, *tops):
    return any(path == t or path.startswith(t + "/") for t in tops)


def grep_rule(sf, pattern, rule, message, findings):
    for lineno, line in enumerate(sf.lines, 1):
        if pattern.search(line):
            if not sf.waived(lineno, rule):
                findings.append(Finding(sf.relpath, lineno, rule, message))


def loop_regions(text):
    """Char-offset (start, end) spans of loop bodies in stripped text.

    A braced body spans its `{...}`; a braceless body spans from the
    first token after the loop header to the terminating `;`. Nested
    loops yield overlapping spans, which is fine — membership in any
    span marks a position as inside a loop.
    """
    loop_head = re.compile(r"\b(?:for|while)\s*\(")
    regions = []
    n = len(text)
    search_from = 0
    while True:
        m = loop_head.search(text, search_from)
        if not m:
            return regions
        search_from = m.end()
        # Skip past the loop-header parens.
        i, pdepth = m.end(), 1
        while i < n and pdepth:
            if text[i] == "(":
                pdepth += 1
            elif text[i] == ")":
                pdepth -= 1
            i += 1
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == "{":
            start, bdepth = i, 1
            i += 1
            while i < n and bdepth:
                if text[i] == "{":
                    bdepth += 1
                elif text[i] == "}":
                    bdepth -= 1
                i += 1
            regions.append((start, i))
        else:
            # Braceless body: one statement, up to the `;` outside any
            # nested parens/braces it opens itself.
            start, bdepth, pdepth = i, 0, 0
            while i < n:
                c = text[i]
                if c == "(":
                    pdepth += 1
                elif c == ")":
                    pdepth -= 1
                elif c == "{":
                    bdepth += 1
                elif c == "}":
                    bdepth -= 1
                elif c == ";" and bdepth == 0 and pdepth == 0:
                    i += 1
                    break
                i += 1
            regions.append((start, i))
