/**
 * @file
 * Amortized-tier serving bench — replays one deterministic repeat-heavy
 * mixed trace through two servers, amortized tier on and off, and
 * reports the speedup a service owner actually buys: per-tier request
 * counts, per-tier service-time p50/p99, and the repeat-request p50
 * ratio against the all-NUTS baseline. The trace mixes gate-passing
 * families ("ad", "votes") with a hierarchical posterior whose
 * mean-field fit the Pareto-k̂ gate rejects ("12cities"), so the served
 * / escalated / cold split is exercised end to end.
 *
 * Output: human-readable tables on stdout, one machine-readable JSON
 * line (prefixed `SERVE_AMORTIZED_JSON:`), and the obs snapshot
 * (amort.* counters included) via $BAYES_BENCH_METRICS_DIR.
 *
 * Hard gates (CI smoke): the tier accounting identity
 * `served + escalated + cold == requests` must hold exactly, zero
 * requests may carry wrong-tier flags (amortized answers never also
 * escalated; full-path answers never marked amortized), and on this
 * >=70%-repeat trace the tier must answer >=50% of requests.
 *
 * Usage: serve_amortized [rounds] [seed]
 */
#include "common.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

using namespace bayes;

namespace {

constexpr double kScale = 0.25;

samplers::Config
requestConfig()
{
    samplers::Config config;
    config.algorithm = samplers::Algorithm::Nuts;
    config.chains = 2;
    config.iterations = 200;
    return config;
}

/**
 * Cheap-tier settings sized for the bench: the Pareto-k̂ estimate is a
 * deterministic function of (workload, scale, ADVI config, importance
 * draws), and at these settings "ad" and "votes" land under the 0.7
 * cutoff while "12cities" lands above it — the split the bench's hard
 * gates rely on. (tests/test_serve_amortized.cpp pins the same
 * configuration.)
 */
samplers::amortize::AmortizeConfig
tierConfig()
{
    samplers::amortize::AmortizeConfig config;
    config.advi.maxIterations = 400;
    config.advi.outputDraws = 256;
    config.importanceDraws = 128;
    return config;
}

/**
 * Deterministic repeat-heavy trace: each round asks for the two
 * gate-passing families plus (every other round) the escalating one, so
 * repeats dominate (>=70%) and all three tier outcomes occur.
 */
std::vector<serve::Request>
mixedTrace(std::size_t rounds, std::uint64_t seed)
{
    std::vector<serve::Request> trace;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (const char* name : {"ad", "votes"}) {
            serve::Request request;
            request.tenant = "bench";
            request.workload = name;
            request.dataScale = kScale;
            request.config = requestConfig();
            request.config.seed = seed;
            request.deadlineSeconds =
                std::numeric_limits<double>::infinity();
            trace.push_back(request);
            if (name[0] == 'a' && round % 2 == 0) {
                serve::Request hard = request;
                hard.workload = "12cities";
                trace.push_back(hard);
            }
        }
    }
    return trace;
}

struct TierStats
{
    std::vector<double> service;
    std::size_t count = 0;

    void note(double seconds)
    {
        service.push_back(seconds);
        ++count;
    }
    double p50() const
    {
        return service.empty() ? 0.0 : quantile(service, 0.50);
    }
    double p99() const
    {
        return service.empty() ? 0.0 : quantile(service, 0.99);
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t rounds =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
    const std::uint64_t seed =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 20190331;

    const std::vector<serve::Request> trace = mixedTrace(rounds, seed);
    std::fprintf(stderr, "[bench] serve_amortized: %zu requests\n",
                 trace.size());

    serve::ServerConfig tiered;
    tiered.amortizedTier = true;
    tiered.amortize = tierConfig();
    serve::Server amortized(tiered);
    std::vector<std::uint64_t> ids;
    const Timer tieredWall;
    for (const serve::Request& r : trace)
        ids.push_back(amortized.submit(r));
    amortized.drain();
    const double tieredSeconds = tieredWall.seconds();

    serve::Server baseline;
    std::vector<std::uint64_t> baseIds;
    const Timer baseWall;
    for (const serve::Request& r : trace)
        baseIds.push_back(baseline.submit(r));
    baseline.drain();
    const double baseSeconds = baseWall.seconds();

    // Per-tier outcome + service-time stats, plus the wrong-tier gate.
    TierStats amortTier;
    TierStats fullTier;
    std::size_t wrongTier = 0;
    for (auto id : ids) {
        const serve::Response& r = amortized.response(id);
        if (r.status != serve::RequestStatus::Ok) {
            std::fprintf(stderr, "ERROR: request %llu not Ok (%s)\n",
                         static_cast<unsigned long long>(id),
                         serve::requestStatusName(r.status));
            return 1;
        }
        if (r.servedAmortized && r.escalated)
            ++wrongTier; // an amortized answer cannot also be escalated
        (r.servedAmortized ? amortTier : fullTier).note(r.serviceSeconds);
    }
    for (auto id : baseIds)
        if (baseline.response(id).servedAmortized)
            ++wrongTier; // tier off: nothing may claim the cheap tier

    // Repeat-request p50: every request after the first touch of its
    // workload family (the population the cache amortizes over).
    auto repeatP50 = [](const serve::Server& server,
                        const std::vector<std::uint64_t>& requestIds) {
        std::vector<double> service;
        std::vector<std::string> seen;
        for (auto id : requestIds) {
            const serve::Response& r = server.response(id);
            bool first = true;
            for (const std::string& w : seen)
                if (w == r.workload)
                    first = false;
            if (first)
                seen.push_back(r.workload);
            else
                service.push_back(r.serviceSeconds);
        }
        return service.empty() ? 0.0 : quantile(service, 0.50);
    };
    const double tieredRepeatP50 = repeatP50(amortized, ids);
    const double baseRepeatP50 = repeatP50(baseline, baseIds);
    const double repeatSpeedup = tieredRepeatP50 > 0.0
        ? baseRepeatP50 / tieredRepeatP50
        : 0.0;

    const samplers::amortize::Stats stats = amortized.amortStats();

    Table tiers({"tier", "requests", "p50(s)", "p99(s)"});
    tiers.row()
        .cell("amortized")
        .cell(static_cast<long>(amortTier.count))
        .cell(amortTier.p50(), 6)
        .cell(amortTier.p99(), 6);
    tiers.row()
        .cell("full (cold+escalated)")
        .cell(static_cast<long>(fullTier.count))
        .cell(fullTier.p50(), 6)
        .cell(fullTier.p99(), 6);
    printSection("Amortized serving — per-tier service time on the "
                 "mixed repeat-heavy trace",
                 tiers);

    Table totals({"requests", "served", "escalated", "cold",
                  "repeat p50 speedup", "tiered wall(s)",
                  "baseline wall(s)"});
    totals.row()
        .cell(static_cast<long>(stats.requests))
        .cell(static_cast<long>(stats.served))
        .cell(static_cast<long>(stats.escalated))
        .cell(static_cast<long>(stats.cold))
        .cell(repeatSpeedup, 1)
        .cell(tieredSeconds, 2)
        .cell(baseSeconds, 2);
    printSection("Amortized serving — tier accounting and the headline "
                 "speedup vs the all-NUTS baseline",
                 totals);

    const std::string json =
        std::string("{\"requests\":") + std::to_string(trace.size())
        + ",\"amort_requests\":" + std::to_string(stats.requests)
        + ",\"served\":" + std::to_string(stats.served)
        + ",\"escalated\":" + std::to_string(stats.escalated)
        + ",\"cold\":" + std::to_string(stats.cold)
        + ",\"wrong_tier\":" + std::to_string(wrongTier)
        + ",\"amortized_p50_s\":" + std::to_string(amortTier.p50())
        + ",\"amortized_p99_s\":" + std::to_string(amortTier.p99())
        + ",\"full_p50_s\":" + std::to_string(fullTier.p50())
        + ",\"full_p99_s\":" + std::to_string(fullTier.p99())
        + ",\"repeat_p50_speedup\":" + std::to_string(repeatSpeedup)
        + "}";
    std::printf("SERVE_AMORTIZED_JSON: %s\n", json.c_str());

    // Hard gates (see file docs).
    if (stats.served + stats.escalated + stats.cold != stats.requests) {
        std::fprintf(stderr, "ERROR: tier accounting broken: "
                             "%llu + %llu + %llu != %llu\n",
                     static_cast<unsigned long long>(stats.served),
                     static_cast<unsigned long long>(stats.escalated),
                     static_cast<unsigned long long>(stats.cold),
                     static_cast<unsigned long long>(stats.requests));
        return 1;
    }
    if (wrongTier != 0) {
        std::fprintf(stderr, "ERROR: %zu wrong-tier responses\n",
                     wrongTier);
        return 1;
    }
    if (2 * stats.served < trace.size()) {
        std::fprintf(stderr,
                     "ERROR: amortized tier served %llu of %zu requests "
                     "(< 50%%)\n",
                     static_cast<unsigned long long>(stats.served),
                     trace.size());
        return 1;
    }

    bench::writeRunReport("serve_amortized");
    return 0;
}
