/**
 * @file
 * §IV-A companion — HMC vs NUTS single-core profiles. The paper notes
 * HMC's characteristics closely track NUTS (IPC 1.5-2.7, same
 * LLC-bound outliers), so it reports NUTS only; this bench reproduces
 * the comparison on a representative slice of the suite.
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>
#include <vector>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    Table table({"workload", "algo", "IPC", "LLCMPKI", "BW(MB/s)",
                 "gradevals", "time(s)"});
    for (const std::string name : {"12cities", "ad", "votes", "tickets"}) {
        const auto wl = workloads::makeWorkload(name);
        const auto profile = archsim::profileWorkload(*wl, 4);
        const bool small = name == "12cities";
        std::vector<samplers::Algorithm> algos = {
            samplers::Algorithm::Nuts, samplers::Algorithm::Hmc};
        if (small) {
            // The gradient-free baselines are only tractable on the
            // smallest workload at bench time scales.
            algos.push_back(samplers::Algorithm::Mh);
            algos.push_back(samplers::Algorithm::Slice);
        }
        for (const auto algo : algos) {
            auto cfg = bench::userConfig(*wl);
            cfg.algorithm = algo;
            cfg.iterations = bench::kShortIterations;
            const auto run = samplers::run(*wl, cfg);
            const auto sim = archsim::simulateSystem(
                profile, archsim::extractRunWork(run), platform, 1);
            table.row()
                .cell(name)
                .cell(samplers::algorithmName(algo))
                .cell(sim.ipc, 2)
                .cell(sim.llcMpki, 2)
                .cell(sim.bandwidthMBps, 0)
                .cell(static_cast<long>(run.totalGradEvals()))
                .cell(sim.seconds, 2);
            std::fprintf(stderr, "[bench] %s/%s done\n", name.c_str(),
                         samplers::algorithmName(algo));
        }
    }
    printSection("Algorithm comparison, single-core profiles "
                 "(paper §IV-A: HMC closely tracks NUTS; MH/slice "
                 "gradient-free baselines on 12cities)",
                 table);
    return 0;
}
