/**
 * @file
 * The wall-clock seam (lint rule R012): support::Clock is the one
 * process-wide time source, swappable for virtual-clock replay, and
 * everything above it — Timer, the tracer's timestamps — follows the
 * installed source without code changes.
 */
#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace {

double g_fakeSeconds = 0.0;

double
fakeClock() noexcept
{
    return g_fakeSeconds;
}

} // namespace

TEST(Clock, DefaultSourceIsMonotonic)
{
    const double t0 = bayes::support::Clock::now();
    const double t1 = bayes::support::Clock::now();
    EXPECT_GE(t1, t0);
}

TEST(Clock, ExchangeSourceInstallsAndRestores)
{
    g_fakeSeconds = 7.0;
    const auto previous = bayes::support::Clock::exchangeSource(&fakeClock);
    EXPECT_EQ(bayes::support::Clock::now(), 7.0);
    g_fakeSeconds = 9.5;
    EXPECT_EQ(bayes::support::Clock::now(), 9.5);
    // nullptr restores the default steady source.
    const auto installed = bayes::support::Clock::exchangeSource(nullptr);
    EXPECT_EQ(installed, &fakeClock);
    EXPECT_GT(bayes::support::Clock::now(), 100.0); // steady_clock epoch
    bayes::support::Clock::exchangeSource(previous);
}

TEST(Clock, ScopedSourceRestoresOnExit)
{
    const double realBefore = bayes::support::Clock::now();
    {
        g_fakeSeconds = 1.0;
        bayes::support::ScopedClockSource scoped(&fakeClock);
        EXPECT_EQ(bayes::support::Clock::now(), 1.0);
    }
    EXPECT_GE(bayes::support::Clock::now(), realBefore);
}

TEST(Clock, TimerMeasuresOnTheInstalledSource)
{
    g_fakeSeconds = 100.0;
    bayes::support::ScopedClockSource scoped(&fakeClock);
    bayes::Timer timer;
    g_fakeSeconds = 102.5;
    EXPECT_DOUBLE_EQ(timer.seconds(), 2.5);
    timer.reset();
    EXPECT_DOUBLE_EQ(timer.seconds(), 0.0);
    g_fakeSeconds = 103.0;
    EXPECT_DOUBLE_EQ(timer.seconds(), 0.5);
}

TEST(Clock, TracerTimestampsFollowTheSeam)
{
    g_fakeSeconds = 50.0;
    bayes::support::ScopedClockSource scoped(&fakeClock);
    auto& tracer = bayes::obs::Tracer::global();
    tracer.start(); // epoch = 50.0 on the fake clock
    g_fakeSeconds = 50.25;
    EXPECT_DOUBLE_EQ(tracer.nowUs(), 0.25 * 1e6);
    {
        bayes::obs::Span span("clock.test");
        g_fakeSeconds = 50.5;
    }
    tracer.stop();
    EXPECT_GE(tracer.eventCount(), 1u);
    const std::string json = tracer.json();
    // The span's duration is virtual-clock time: 0.25 s = 250000 us.
    EXPECT_NE(json.find("\"dur\": 250000"), std::string::npos) << json;
}
