#include "workloads/votes_forecast.hpp"

#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/linalg.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

VotesForecast::VotesForecast(double dataScale)
    : Workload(
          WorkloadInfo{
              "votes", "Hierarchical Gaussian Processes",
              "Forecasting presidential votes",
              "StanCon 2017",
              "historical (1976-2016) presidential vote shares",
              /*defaultIterations=*/1400},
          dataScale)
{
    Rng rng = dataRng();
    const std::size_t cycles = scaled(20); // 1976 .. 2052 every 4 years
    numObserved_ = std::max<std::size_t>(4, cycles * 11 / 20);

    cycleYears_.resize(cycles);
    for (std::size_t i = 0; i < cycles; ++i)
        cycleYears_[i] = static_cast<double>(i) / 4.0; // decades-ish scale

    // Ground truth: draw a smooth GP path and observe it with noise.
    const double alphaTrue = 0.35;
    const double rhoTrue = 1.2;
    const double sigmaTrue = 0.08;
    const double meanTrue = 0.1; // slight structural lean, logit scale

    const auto kTrue =
        math::gpCovSquaredExp(cycleYears_, alphaTrue, rhoTrue, 1e-8);
    const auto lTrue = math::cholesky(kTrue);
    std::vector<double> z(cycles);
    for (auto& zi : z)
        zi = rng.normal();
    const auto path = math::matVec(lTrue, z);

    observed_.resize(numObserved_);
    for (std::size_t i = 0; i < numObserved_; ++i)
        observed_[i] = meanTrue + path[i] + rng.normal(0.0, sigmaTrue);

    setModeledDataBytes((cycleYears_.size() + observed_.size())
                        * sizeof(double));

    setLayout({
        {"mean", 1, ppl::TransformKind::Identity, 0, 0},
        {"alpha", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"rho", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"sigma", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"z", cycles, ppl::TransformKind::Identity, 0, 0},
    });
}

template <typename T>
T
VotesForecast::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& mean = p.scalar(kMean);
    const T& alpha = p.scalar(kAlpha);
    const T& rho = p.scalar(kRho);
    const T& sigma = p.scalar(kSigma);

    T lp = normal_lpdf(mean, 0.0, 1.0)
        + lognormal_lpdf(alpha, std::log(0.35), 0.4)
        + lognormal_lpdf(rho, std::log(1.2), 0.35)
        + lognormal_lpdf(sigma, std::log(0.1), 0.5);

    // Non-centered GP: f = mean + L z with z ~ N(0, I).
    const std::vector<T> z = p.vec(kZ);
    lp += std_normal_lpdf_vec(std::span<const T>(z));

    // The dense Cholesky stays on the scalar tape: its working set is
    // the triangular factor itself, not per-observation nodes.
    const Matrix<T> k = gpCovSquaredExp(cycleYears_, alpha, rho, 1e-6);
    const Matrix<T> l = cholesky(k);
    const std::vector<T> f = matVec(l, z);

    std::vector<T> mu;
    mu.reserve(observed_.size());
    for (std::size_t i = 0; i < observed_.size(); ++i)
        mu.push_back(mean + f[i]);
    lp += normal_lpdf_vec(std::span<const double>(observed_),
                          std::span<const T>(mu), sigma);
    return lp;
}

template <typename T>
T
VotesForecast::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& mean = p.scalar(kMean);
    const T& alpha = p.scalar(kAlpha);
    const T& rho = p.scalar(kRho);
    const T& sigma = p.scalar(kSigma);

    T lp = normal_lpdf(mean, 0.0, 1.0)
        + lognormal_lpdf(alpha, std::log(0.35), 0.4)
        + lognormal_lpdf(rho, std::log(1.2), 0.35)
        + lognormal_lpdf(sigma, std::log(0.1), 0.5);

    // Non-centered GP: f = mean + L z with z ~ N(0, I).
    const std::vector<T> z = p.vec(kZ);
    for (const T& zi : z)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += std_normal_lpdf(zi);

    const Matrix<T> k = gpCovSquaredExp(cycleYears_, alpha, rho, 1e-6);
    const Matrix<T> l = cholesky(k);
    const std::vector<T> f = matVec(l, z);

    for (std::size_t i = 0; i < observed_.size(); ++i)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(observed_[i], mean + f[i], sigma);
    return lp;
}

double
VotesForecast::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
VotesForecast::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
VotesForecast::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
VotesForecast::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
VotesForecast::dataSufficientStats() const
{
    double sumCycle = 0.0;
    double sumCycleSq = 0.0;
    for (double c : cycleYears_) {
        sumCycle += c;
        sumCycleSq += c * c;
    }
    double sumObs = 0.0;
    double sumObsSq = 0.0;
    for (double o : observed_) {
        sumObs += o;
        sumObsSq += o * o;
    }
    return {static_cast<double>(cycleYears_.size()),
            static_cast<double>(numObserved_),
            sumCycle,
            sumCycleSq,
            sumObs,
            sumObsSq};
}

} // namespace bayes::workloads
