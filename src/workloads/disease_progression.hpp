/**
 * @file
 * `disease` — measuring the continually worsening progression of
 * Alzheimer's disease.
 *
 * After Pourzanjani et al. (2018): biomarker trajectories are modeled
 * as monotonically increasing functions of disease time using an
 * I-spline basis with nonnegative weights; a logistic layer maps the
 * latent progression score to the clinical diagnosis.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Monotone I-spline disease-progression workload. */
class DiseaseProgression : public Workload
{
  public:
    explicit DiseaseProgression(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;
    void logProbBatch(const ppl::BatchParamView<double>& p,
                      std::span<double> lp) const override;
    void logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                      std::span<ad::Var> lp) const override;

    /** Number of biomarker observations. */
    std::size_t numObservations() const { return biomarker_.size(); }

    /** Number of I-spline basis functions. */
    std::size_t numBasis() const { return numBasis_; }

    std::vector<double> dataSufficientStats() const override;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kWeights,   ///< nonnegative I-spline weights (monotonicity)
        kOffset,    ///< biomarker baseline level
        kSigma,     ///< biomarker observation noise, > 0
        kDiagScale, ///< diagnosis logistic slope
        kDiagShift, ///< diagnosis logistic midpoint
    };

  private:
    template <typename T>
    T priorLp(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;
    template <typename T>
    void logDensityBatch(const ppl::BatchParamView<T>& p,
                         std::span<T> lp) const;

    /** I-spline basis value for basis k at standardized time t. */
    static double isplineBasis(std::size_t k, std::size_t nBasis, double t);

    std::size_t numBasis_;
    std::vector<double> basis_;    ///< row-major [obs][basis]
    std::vector<double> biomarker_;
    std::vector<int> diagnosis_;
};

} // namespace bayes::workloads
