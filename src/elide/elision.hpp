/**
 * @file
 * Runtime convergence detection / computation elision (paper §VI).
 *
 * Instead of running the user-configured iteration count to the end,
 * the elided runner computes the Gelman-Rubin split R-hat across chains
 * every few iterations (over the most recent half of the sampling
 * draws, matching the paper's "second half of samples" convention) and
 * terminates the job once every coordinate's R-hat drops below the
 * threshold (1.1, per Brooks et al.).
 */
#pragma once

#include <vector>

#include "ppl/model.hpp"
#include "samplers/types.hpp"

namespace bayes::elide {

/** Convergence-detection policy. */
struct ElisionConfig
{
    /** R-hat level taken as converged (paper uses 1.1). */
    double rhatThreshold = 1.1;
    /** Draws between R-hat evaluations. */
    int checkInterval = 25;
    /** Minimum draws per chain before the first check. */
    int minDraws = 100;
    /** Fraction of draws the diagnostic window keeps (paper: 0.5). */
    double windowFraction = 0.5;
    /**
     * Adaptation iterations for the elided schedule. The paper's
     * detection treats the whole run uniformly (12cities "converges
     * after 600 iterations" of a 2000-iteration budget, warmup
     * included), so the elided runner uses a short fixed adaptation
     * phase instead of Stan's iterations/2 and lets detection govern
     * everything after it.
     */
    int adaptationIters = 150;
};

/** One R-hat evaluation along the run. */
struct RhatSample
{
    int draw;    ///< post-warmup draws per chain at evaluation time
    double rhat; ///< max split R-hat across coordinates
};

/** Result of an elided run. */
struct ElisionResult
{
    samplers::RunResult run;
    /** True when the run stopped on detection (not budget exhaustion). */
    bool converged = false;
    /** Post-warmup draws per chain when sampling stopped. */
    int stoppedAtDraw = 0;
    /** Draws the elided schedule could have taken. */
    int budgetDraws = 0;
    /** Total iterations executed per chain (adaptation + draws). */
    int executedIterations = 0;
    /** Total iterations of the user's configuration. */
    int budgetIterations = 0;
    /** R-hat trace at every check. */
    std::vector<RhatSample> rhatTrace;
    /** Wall-clock seconds spent inside the detector itself. */
    double detectorSeconds = 0.0;

    /**
     * Fraction of the user's total iteration budget elided — the
     * paper's "excess iterations" metric (0 when not converged).
     */
    double elidedFraction() const;
};

/**
 * Run @p model under @p config with runtime convergence detection.
 * The sampler configuration's iteration count acts as the budget; the
 * run stops early at detection. Elision composes with parallelism:
 * `config.execution` selects the schedule, and the phased barrier
 * executor guarantees the same draws and the same stop iteration under
 * Sequential, ThreadPerChain and Pool.
 */
ElisionResult runWithElision(const ppl::Model& model,
                             const samplers::Config& config,
                             const ElisionConfig& elision = ElisionConfig{});

/**
 * Max split R-hat over all coordinates of the most recent
 * @p windowFraction of draws (the detector's inner computation,
 * exposed for tests and the overhead micro-bench).
 */
double detectorRhat(const std::vector<samplers::ChainResult>& chains,
                    int drawsSoFar, double windowFraction);

/** True when the detector evaluates R-hat at @p draw under @p config. */
bool detectorChecksAt(const ElisionConfig& config, int draw);

/**
 * Replay the detector's check schedule over an already-completed run:
 * one RhatSample per point where the live detector would have
 * evaluated, across *all* available draws (no early stop). This is the
 * offline twin of the `ElisionResult::rhatTrace` a live elided run
 * records — benches use it to trace convergence beyond the stop point
 * (Fig. 5) without re-implementing the check schedule.
 */
std::vector<RhatSample>
convergenceTrace(const std::vector<samplers::ChainResult>& chains,
                 const ElisionConfig& config = ElisionConfig{});

} // namespace bayes::elide
