/**
 * @file
 * BayesSuite workload base class and registry. A Workload is a
 * ppl::Model plus the metadata from the paper's Table I (model family,
 * application, data description) and the original user-facing run
 * configuration (chains, iterations) whose excess the elision study
 * measures.
 *
 * Every workload generates its own synthetic dataset deterministically
 * from a per-workload seed. A dataScale in (0, 1] shrinks the dataset
 * (Fig. 3's "-h" and "-q" variants use 0.5 and 0.25).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ppl/model.hpp"
#include "support/rng.hpp"

namespace bayes::workloads {

/** Table-I style metadata for one workload. */
struct WorkloadInfo
{
    std::string name;
    std::string modelFamily;
    std::string application;
    std::string source;
    std::string dataDescription;
    /** Iterations the original model developer configured. */
    int defaultIterations = 2000;
    /** Chains per the Brooks et al. recommendation the paper follows. */
    int defaultChains = 4;
};

/** Base class for all BayesSuite workloads. */
class Workload : public ppl::Model
{
  public:
    /**
     * @param info       Table-I metadata
     * @param dataScale  dataset shrink factor in (0, 1]
     */
    Workload(WorkloadInfo info, double dataScale);

    const std::string& name() const override { return info_.name; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return dataBytes_; }

    /** Table-I metadata. */
    const WorkloadInfo& info() const { return info_; }

    /** Dataset shrink factor. */
    double dataScale() const { return dataScale_; }

  protected:
    /** Install the parameter layout (call once from the constructor). */
    void
    setLayout(std::vector<ppl::ParamBlock> blocks)
    {
        layout_ = ppl::ParamLayout(std::move(blocks));
    }

    /** Record the total bytes of observed (modeled) data. */
    void setModeledDataBytes(std::size_t bytes) { dataBytes_ = bytes; }

    /** Deterministic data-generation stream for this workload. */
    Rng dataRng() const;

    /** Scale an element count by dataScale (floor 4). */
    std::size_t scaled(std::size_t n) const;

  private:
    WorkloadInfo info_;
    ppl::ParamLayout layout_;
    double dataScale_;
    std::size_t dataBytes_ = 0;
};

/** Names of the ten BayesSuite workloads in the paper's Table I order. */
const std::vector<std::string>& suiteNames();

/**
 * Instantiate a workload by name.
 * @param name       one of suiteNames()
 * @param dataScale  dataset shrink factor in (0, 1]
 * @throws bayes::Error for unknown names
 */
std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                       double dataScale = 1.0);

/** Instantiate the full suite in Table I order. */
std::vector<std::unique_ptr<Workload>> makeSuite(double dataScale = 1.0);

} // namespace bayes::workloads
