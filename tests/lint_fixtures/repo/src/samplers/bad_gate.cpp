// R014 fixture: acceptance-gate threshold literals restated outside
// amortize_gate.hpp, in every spelling the rule must catch — plus the
// legal pattern (threading a configured value) that must stay quiet.
#include "amortize_gate.hpp"

namespace fixture {

double
gateDrift(GateThresholds& gate, const GateThresholds& tuned)
{
    gate.khatMax = 0.7;                    // EXPECT: R014
    gate.klMax = -1.5;                     // EXPECT: R014
    const GateThresholds strict{.refRhatMax{1.05}};  // EXPECT: R014
    gate.refRhatMax = tuned.refRhatMax; // configured value: legal
    return strict.refRhatMax + gate.khatMax;
}

} // namespace fixture
